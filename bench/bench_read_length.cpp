// E8 — Read-length / error-rate series (supporting experiment).
//
// Paper: the implementations are "capable of aligning both short and
// long reads". This series runs every aligner across read lengths and
// error rates and prints the per-configuration throughput, showing where
// each aligner wins. Aligners come from the engine::AlignerRegistry.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto base_cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E8: read length / error rate series (bench_read_length)",
                     "improved GenASM serves both short and long reads");

  struct Point {
    std::size_t length;
    double error;
  };
  const std::vector<Point> points = {
      {100, 0.01}, {100, 0.05}, {250, 0.01}, {250, 0.05},
      {1'000, 0.05}, {1'000, 0.10}, {5'000, 0.10}, {5'000, 0.15},
  };
  const char* backends[] = {"ksw", "myers", "windowed-baseline",
                            "windowed-improved"};

  std::printf("%-8s %-6s %8s | %12s %12s %12s %12s   (alignments/s)\n",
              "length", "err", "pairs", "KSW2-class", "Edlib-class",
              "GenASM-base", "GenASM-impr");
  for (const auto& pt : points) {
    bench::WorkloadConfig cfg = base_cfg;
    cfg.read_length = pt.length;
    cfg.error_rate = pt.error;
    cfg.read_count = pt.length >= 1'000 ? 10 : 60;
    cfg.genome_len = std::max<std::size_t>(200'000, pt.length * 40);
    const auto w = bench::buildWorkload(cfg);
    if (w.pairs.empty()) continue;
    const double n = static_cast<double>(w.pairs.size());

    engine::AlignerConfig acfg;
    acfg.ksw.band = pt.length >= 1'000 ? 751 : -1;

    double rate[4] = {};
    for (int b = 0; b < 4; ++b) {
      const auto aligner = engine::makeAligner(backends[b], acfg);
      const double s = bench::timeIt([&] {
        for (const auto& p : w.pairs) (void)aligner->align(p.target, p.query);
      });
      rate[b] = n / s;
    }
    std::printf("%-8zu %-6.2f %8zu | %12.1f %12.1f %12.1f %12.1f\n",
                pt.length, pt.error, w.pairs.size(), rate[0], rate[1],
                rate[2], rate[3]);
  }
  std::printf(
      "\nExpected shape: GenASM-improved leads at long lengths; at very "
      "short lengths all aligners are fast and differences compress.\n");
  return 0;
}
