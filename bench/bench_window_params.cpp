// E7 — Window-geometry design space (supporting experiment).
//
// DESIGN.md calls out three windowing choices: window size W, overlap O,
// and text lookahead. This sweep quantifies the accuracy/speed trade-off
// of each against the optimal (Edlib-class) cost, justifying the
// defaults W=64, O=24, lookahead=W/2.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E7: window parameter sweep (bench_window_params)",
                     "design-space justification for W=64, O=24 defaults");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  // Optimal costs as the accuracy reference.
  const auto oracle = engine::makeAligner("myers");
  double optimal_total = 0;
  for (const auto& p : w.pairs) {
    optimal_total += oracle->align(p.target, p.query).edit_distance;
  }

  struct Geometry {
    int window;
    int overlap;
    int lookahead;  // -1 = default (W/2)
  };
  const std::vector<Geometry> sweep = {
      {32, 8, -1},   {32, 16, -1},  {48, 16, -1},  {64, 16, -1},
      {64, 24, -1},  {64, 24, 0},   {64, 24, 16},  {64, 24, 64},
      {64, 32, -1},  {64, 48, -1},  {96, 32, -1},  {128, 48, -1},
      {256, 96, -1},
  };

  std::printf("%-8s %-8s %-10s %10s %12s %14s\n", "W", "O", "lookahead",
              "seconds", "cost ratio", "alignments/s");
  for (const auto& g : sweep) {
    engine::AlignerConfig acfg;
    acfg.window.window = g.window;
    acfg.window.overlap = g.overlap;
    acfg.window.lookahead = g.lookahead;
    const auto aligner = engine::makeAligner("windowed-improved", acfg);
    double total_cost = 0;
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        total_cost += aligner->align(p.target, p.query).edit_distance;
      }
    });
    std::printf("%-8d %-8d %-10d %10.3f %12.4f %14.1f\n", g.window, g.overlap,
                g.lookahead >= 0 ? g.lookahead : g.window / 2, s,
                total_cost / optimal_total,
                static_cast<double>(w.pairs.size()) / s);
  }
  std::printf(
      "\n'cost ratio' = windowed GenASM total edit cost / optimal cost "
      "(1.0 = exact).\nLookahead 0 reproduces the equal-window pathology "
      "discussed in DESIGN.md; larger windows trade throughput for "
      "accuracy margin.\n");
  return 0;
}
