// E2 — GPU comparison (the paper's second results group).
//
// Paper: "Our GPU implementation achieves a 4.1x, 62x, 7.2x, and 5.9x
// speedup over our CPU implementation, KSW2, Edlib, and a GPU
// implementation of GenASM without our improvements, respectively."
//
// The GPU is the simulated A6000 (src/genasmx/gpusim); kernels execute
// functionally (results are bit-exact with the CPU path) and time comes
// from the documented analytical model. CPU baselines are measured
// single-thread and scaled to the paper's 48 threads (alignment pairs
// are embarrassingly parallel). See EXPERIMENTS.md for model caveats.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/gpukernels/genasm_kernels.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E2: GPU comparison (bench_gpu_aligners)",
                     "improved GenASM GPU vs own CPU 4.1x, vs KSW2 62x, "
                     "vs Edlib 7.2x, vs unimproved GPU GenASM 5.9x");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);
  constexpr double kPaperThreads = 48.0;
  const double n_pairs = static_cast<double>(w.pairs.size());

  // --- measured CPU baselines (single thread), scaled to 48 threads.
  engine::AlignerConfig acfg;
  acfg.ksw.band = 751;
  auto timeBackend = [&](const char* backend) {
    const auto aligner = engine::makeAligner(backend, acfg);
    return bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        (void)aligner->align(p.target, p.query);
      }
    });
  };
  const double ksw_s = timeBackend("ksw");
  const double myers_s = timeBackend("myers");
  const double cpu_improved_s = timeBackend("windowed-improved");

  // --- simulated GPU kernels.
  gpusim::Device device;
  const auto gpu_improved = gpukernels::alignBatchImproved(device, w.pairs);
  const auto gpu_baseline = gpukernels::alignBatchBaseline(device, w.pairs);

  auto rate48 = [&](double single_thread_s) {
    return n_pairs / single_thread_s * kPaperThreads;
  };
  const double r_ksw = rate48(ksw_s);
  const double r_edlib = rate48(myers_s);
  const double r_cpu = rate48(cpu_improved_s);
  const double r_gpu = gpu_improved.alignments_per_second;
  const double r_gpu_base = gpu_baseline.alignments_per_second;

  std::printf("%-40s %16s\n", "implementation", "alignments/s");
  std::printf("%-40s %16.0f\n", "KSW2-class CPU (48t modeled)", r_ksw);
  std::printf("%-40s %16.0f\n", "Edlib-class CPU (48t modeled)", r_edlib);
  std::printf("%-40s %16.0f\n", "GenASM improved CPU (48t modeled)", r_cpu);
  std::printf("%-40s %16.0f\n", "GenASM baseline GPU (sim A6000)", r_gpu_base);
  std::printf("%-40s %16.0f\n", "GenASM improved GPU (sim A6000)", r_gpu);

  std::printf("\nGPU kernel diagnostics (improved | baseline):\n");
  std::printf("  shared bytes/block     %8zu | %8zu (limit %zu)\n",
              gpu_improved.launch.shared_per_block,
              gpu_baseline.launch.shared_per_block,
              device.spec().shared_mem_per_block);
  std::printf("  blocks spilled to DRAM %8llu | %8llu of %zu\n",
              static_cast<unsigned long long>(gpu_improved.spilled_blocks),
              static_cast<unsigned long long>(gpu_baseline.spilled_blocks),
              w.pairs.size());
  std::printf("  DRAM traffic (MB)      %8.1f | %8.1f\n",
              gpu_improved.launch.global_bytes / 1e6,
              gpu_baseline.launch.global_bytes / 1e6);
  std::printf("  time bound (model)     %8s | %8s\n",
              gpu_improved.time.total_s == gpu_improved.time.dram_s
                  ? "DRAM"
                  : (gpu_improved.time.total_s == gpu_improved.time.compute_s
                         ? "compute"
                         : "latency/shared"),
              gpu_baseline.time.total_s == gpu_baseline.time.dram_s
                  ? "DRAM"
                  : (gpu_baseline.time.total_s == gpu_baseline.time.compute_s
                         ? "compute"
                         : "latency/shared"));

  std::printf("\n%-44s %10s %10s\n", "speedup of improved GenASM (GPU) over",
              "modeled", "paper");
  std::printf("%-44s %9.1fx %9.1fx\n", "improved GenASM CPU (48t)",
              r_gpu / r_cpu, 4.1);
  std::printf("%-44s %9.1fx %9.1fx\n", "KSW2-class CPU (48t)", r_gpu / r_ksw,
              62.0);
  std::printf("%-44s %9.1fx %9.1fx\n", "Edlib-class CPU (48t)",
              r_gpu / r_edlib, 7.2);
  std::printf("%-44s %9.1fx %9.1fx\n", "GenASM baseline GPU",
              r_gpu / r_gpu_base, 5.9);
  return 0;
}
