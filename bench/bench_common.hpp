#pragma once
// Shared infrastructure for the experiment harnesses (E1-E8): workload
// construction mirroring the paper's methodology at a configurable scale,
// plus timing and table helpers.
//
// Paper methodology (Section II): 500 PacBio 10 kb reads simulated with
// PBSIM2 from the human genome, mapped with minimap2 -P; the resulting
// 138,929 (read, candidate location) pairs are aligned by every tool.
// Scale here is reduced by default so every experiment runs in seconds
// on one core; pass --scale=paper (or --reads/--length) to grow it.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "genasmx/mapper/mapper.hpp"
#include "genasmx/readsim/genome.hpp"
#include "genasmx/readsim/read_simulator.hpp"
#include "genasmx/util/timer.hpp"

namespace gx::bench {

// --------------------------------------------------------------- perf JSON
//
// The tracked perf trajectory: each harness can emit a flat-ish JSON
// document (BENCH_*.json at the repo root) in its quick deterministic
// mode, so every PR records the numbers it was measured at. Dependency-
// free by design — a tiny ordered writer, not a JSON library.

class JsonObject {
 public:
  JsonObject& num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonObject& num(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& num(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& str(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }
  JsonObject& obj(const std::string& key, const JsonObject& child) {
    return raw(key, child.str());
  }

  [[nodiscard]] std::string str() const { return body_ + "}"; }

  /// Write to `path` (with a trailing newline). Returns false on I/O
  /// failure so harnesses can exit non-zero.
  [[nodiscard]] bool writeFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << str() << "\n";
    return static_cast<bool>(out);
  }

 private:
  JsonObject& raw(const std::string& key, const std::string& v) {
    body_ += body_.size() == 1 ? "" : ",";
    body_ += "\"" + key + "\":" + v;
    return *this;
  }
  std::string body_ = "{";
};

/// Peak resident set size (VmHWM) in bytes; 0 where /proc is absent.
inline std::uint64_t peakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024ULL;
    }
  }
  return 0;
}

struct WorkloadConfig {
  std::size_t genome_len = 400'000;
  std::size_t read_count = 20;
  std::size_t read_length = 2'000;
  double error_rate = 0.10;
  std::size_t max_candidates_per_read = 8;
  std::uint64_t seed = 1234;
  /// Quick deterministic mode for the tracked perf JSON: a fixed reduced
  /// workload (seeded PRNGs everywhere) that finishes in seconds.
  bool quick = false;
  /// When non-empty, the harness writes its BENCH_*.json here.
  std::string json_path;

  static WorkloadConfig fromArgs(int argc, char** argv) {
    WorkloadConfig cfg;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* key) -> const char* {
        const std::size_t n = std::strlen(key);
        return arg.rfind(key, 0) == 0 ? arg.c_str() + n : nullptr;
      };
      if (const char* v = val("--genome=")) cfg.genome_len = std::strtoull(v, nullptr, 10);
      else if (const char* v2 = val("--reads=")) cfg.read_count = std::strtoull(v2, nullptr, 10);
      else if (const char* v3 = val("--length=")) cfg.read_length = std::strtoull(v3, nullptr, 10);
      else if (const char* v4 = val("--error=")) cfg.error_rate = std::strtod(v4, nullptr);
      else if (const char* v5 = val("--seed=")) cfg.seed = std::strtoull(v5, nullptr, 10);
      else if (const char* v6 = val("--json=")) cfg.json_path = v6;
      else if (arg == "--quick") cfg.quick = true;
      else if (arg == "--scale=paper") {
        // The paper's full workload; expect minutes-to-hours on one core.
        cfg.genome_len = 20'000'000;
        cfg.read_count = 500;
        cfg.read_length = 10'000;
      }
    }
    return cfg;
  }
};

struct Workload {
  std::string genome;
  std::vector<readsim::SimulatedRead> reads;
  std::vector<mapper::AlignmentPair> pairs;
  std::size_t total_candidates = 0;
  double build_seconds = 0;
  double aligned_bases = 0;  ///< sum of query lengths over pairs
};

inline Workload buildWorkload(const WorkloadConfig& cfg) {
  util::Timer timer;
  Workload w;
  readsim::GenomeConfig gcfg;
  gcfg.length = cfg.genome_len;
  gcfg.seed = cfg.seed;
  // A repeat-rich genome so `-P`-style all-chain mapping yields secondary
  // candidates per read, as the paper's human-genome workload does.
  gcfg.repeat_fraction = 0.25;
  gcfg.repeat_unit = 2'000;
  gcfg.repeat_divergence = 0.02;
  w.genome = readsim::generateGenome(gcfg);

  auto rcfg = readsim::ReadSimConfig::pacbioClr(cfg.read_count, cfg.read_length);
  rcfg.errors.error_rate = cfg.error_rate;
  rcfg.seed = cfg.seed + 1;
  w.reads = readsim::simulateReads(w.genome, rcfg);

  mapper::Mapper mapper(std::string(w.genome));
  for (const auto& r : w.reads) {
    const auto cands = mapper.map(r.seq);
    w.total_candidates += cands.size();
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq,
                                          cfg.max_candidates_per_read);
    for (auto& p : rp) w.pairs.push_back(std::move(p));
  }
  for (const auto& p : w.pairs) {
    w.aligned_bases += static_cast<double>(p.query.size());
  }
  w.build_seconds = timer.seconds();
  return w;
}

/// Time `fn()` and return seconds (single run; workloads are sized so one
/// run is representative, and benches print work counts alongside).
template <class Fn>
double timeIt(Fn&& fn) {
  util::Timer t;
  fn();
  return t.seconds();
}

inline void printHeader(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void printWorkload(const WorkloadConfig& cfg, const Workload& w) {
  std::printf(
      "Workload: genome=%zubp reads=%zux%zubp (%.0f%% err) candidates=%zu "
      "pairs=%zu (built in %.2fs)\n\n",
      cfg.genome_len, w.reads.size(), cfg.read_length, cfg.error_rate * 100,
      w.total_candidates, w.pairs.size(), w.build_seconds);
}

}  // namespace gx::bench
