// E3 — DP memory footprint (the paper's first headline claim).
//
// Paper: "Our algorithmic improvements reduce the memory footprint by
// 24x". Footprint is measured from the instrumented high-water mark of
// live DP bytes per alignment problem, for the baseline and for each
// combination of the three improvements.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/core/windowed.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  cfg.read_count = std::min<std::size_t>(cfg.read_count, 8);
  bench::printHeader("E3: DP memory footprint (bench_memory_footprint)",
                     "24x memory footprint reduction");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  auto measure_baseline = [&]() {
    util::MemStats stats;
    for (const auto& p : w.pairs) {
      (void)core::alignWindowedBaseline(p.target, p.query,
                                        core::WindowConfig{}, &stats);
    }
    return stats;
  };
  auto measure_improved = [&](core::ImprovedOptions opts) {
    util::MemStats stats;
    for (const auto& p : w.pairs) {
      (void)core::alignWindowedImproved(p.target, p.query,
                                        core::WindowConfig{}, opts, &stats);
    }
    return stats;
  };

  const auto base = measure_baseline();
  struct Variant {
    const char* name;
    core::ImprovedOptions opts;
  };
  core::ImprovedOptions only_compress = core::ImprovedOptions::none();
  only_compress.compress_entries = true;
  core::ImprovedOptions only_et = core::ImprovedOptions::none();
  only_et.early_termination = true;
  core::ImprovedOptions only_trp = core::ImprovedOptions::none();
  only_trp.traceback_pruning = true;
  const Variant variants[] = {
      {"level-major, no improvements", core::ImprovedOptions::none()},
      {"+ entry compression only", only_compress},
      {"+ early termination only", only_et},
      {"+ traceback pruning only", only_trp},
      {"all three (this paper)", core::ImprovedOptions::all()},
  };

  auto perWindow = [](const util::MemStats& s) {
    return static_cast<double>(s.bytes_allocated) /
           static_cast<double>(s.problems);
  };
  std::printf("%-36s %16s %14s %10s\n", "configuration", "peak DP bytes",
              "bytes/window", "reduction");
  std::printf("%-36s %16llu %14.0f %9.1fx\n",
              "GenASM baseline (4 edge vectors)",
              static_cast<unsigned long long>(base.bytes_peak),
              perWindow(base), 1.0);
  double peak_reduction = 0;
  double steady_reduction = 0;
  for (const auto& v : variants) {
    const auto s = measure_improved(v.opts);
    steady_reduction = perWindow(base) / perWindow(s);
    peak_reduction = static_cast<double>(base.bytes_peak) /
                     static_cast<double>(s.bytes_peak);
    std::printf("%-36s %16llu %14.0f %9.1fx\n", v.name,
                static_cast<unsigned long long>(s.bytes_peak), perWindow(s),
                steady_reduction);
  }
  std::printf("\n%-44s %10s %10s\n", "memory footprint reduction", "measured",
              "paper");
  std::printf("%-44s %9.1fx %9.1fx\n",
              "steady-state (per window problem)", steady_reduction, 24.0);
  std::printf("%-44s %9.1fx %9.1fx\n", "absolute peak (incl. final window)",
              peak_reduction, 24.0);
  std::printf(
      "\n'bytes/window' = DP bytes allocated per window problem (edge\n"
      "tables, stored rows, working rows) — the per-thread working set the\n"
      "paper's claim refers to. 'peak' additionally includes the final\n"
      "global window, which is larger than a steady-state window for both\n"
      "variants.\n");
  return 0;
}
