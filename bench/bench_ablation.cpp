// E5 — Ablation of the three improvements, CPU and simulated GPU.
//
// Paper observation: "the CPU and GPU implementations of GenASM provide
// speedups over Edlib only if our algorithmic improvements are applied."
// This harness toggles each improvement and checks exactly that claim,
// plus each idea's individual contribution to runtime.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/gpukernels/genasm_kernels.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E5: improvement ablation (bench_ablation)",
                     "GenASM beats Edlib only with the improvements applied");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  // Edlib-class reference.
  const auto myers_aligner = engine::makeAligner("myers");
  const double edlib_s = bench::timeIt([&] {
    for (const auto& p : w.pairs) {
      (void)myers_aligner->align(p.target, p.query);
    }
  });
  std::printf("%-40s %10.3fs (reference)\n\n", "Edlib-class CPU", edlib_s);

  struct Variant {
    const char* name;
    bool baseline;  // use the true column-major baseline
    core::ImprovedOptions opts;
  };
  core::ImprovedOptions no_compress = core::ImprovedOptions::all();
  no_compress.compress_entries = false;
  core::ImprovedOptions no_et = core::ImprovedOptions::all();
  no_et.early_termination = false;
  core::ImprovedOptions no_trp = core::ImprovedOptions::all();
  no_trp.traceback_pruning = false;
  const Variant variants[] = {
      {"GenASM baseline (none)", true, {}},
      {"all except entry compression", false, no_compress},
      {"all except early termination", false, no_et},
      {"all except traceback pruning", false, no_trp},
      {"all three improvements", false, core::ImprovedOptions::all()},
  };

  gpusim::Device device;
  std::printf("%-36s %10s %12s %14s %10s\n", "CPU variant", "seconds",
              "vs Edlib", "GPU align/s", "GPU spill");
  for (const auto& v : variants) {
    engine::AlignerConfig acfg;
    acfg.improved = v.opts;
    const auto aligner = engine::makeAligner(
        v.baseline ? "windowed-baseline" : "windowed-improved", acfg);
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        (void)aligner->align(p.target, p.query);
      }
    });
    const auto gpu =
        v.baseline
            ? gpukernels::alignBatchBaseline(device, w.pairs)
            : gpukernels::alignBatchImproved(device, w.pairs,
                                             core::WindowConfig{}, v.opts);
    std::printf("%-36s %10.3f %11.2fx %14.0f %9llu\n", v.name, s,
                edlib_s / s, gpu.alignments_per_second,
                static_cast<unsigned long long>(gpu.spilled_blocks));
  }

  std::printf(
      "\nReading: 'vs Edlib' > 1.0 means GenASM wins. The paper's claim is\n"
      "that the full-improvement row is the one that beats Edlib, while\n"
      "the baseline row does not. 'GPU spill' counts blocks whose DP\n"
      "working set did not fit in shared memory.\n");
  return 0;
}
