// E4 — DP memory accesses (the paper's second headline claim).
//
// Paper: "Our algorithmic improvements reduce ... the number of memory
// accesses by 12x". Accesses are instrumented word-granular loads and
// stores to any DP data structure (edge tables, stored rows, working
// rows), for both the distance calculation and the traceback.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/core/windowed.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  cfg.read_count = std::min<std::size_t>(cfg.read_count, 8);
  bench::printHeader("E4: DP memory accesses (bench_memory_accesses)",
                     "12x reduction in memory accesses");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  util::MemStats base;
  for (const auto& p : w.pairs) {
    (void)core::alignWindowedBaseline(p.target, p.query, core::WindowConfig{},
                                      &base);
  }

  struct Variant {
    const char* name;
    core::ImprovedOptions opts;
  };
  core::ImprovedOptions only_compress = core::ImprovedOptions::none();
  only_compress.compress_entries = true;
  core::ImprovedOptions only_et = core::ImprovedOptions::none();
  only_et.early_termination = true;
  core::ImprovedOptions only_trp = core::ImprovedOptions::none();
  only_trp.traceback_pruning = true;
  const Variant variants[] = {
      {"level-major, no improvements", core::ImprovedOptions::none()},
      {"+ entry compression only", only_compress},
      {"+ early termination only", only_et},
      {"+ traceback pruning only", only_trp},
      {"all three (this paper)", core::ImprovedOptions::all()},
  };

  std::printf("%-36s %14s %14s %10s\n", "configuration", "DP stores",
              "DP loads", "reduction");
  std::printf("%-36s %14llu %14llu %9.1fx\n", "GenASM baseline",
              static_cast<unsigned long long>(base.dp_stores),
              static_cast<unsigned long long>(base.dp_loads), 1.0);
  double final_reduction = 0;
  for (const auto& v : variants) {
    util::MemStats s;
    for (const auto& p : w.pairs) {
      (void)core::alignWindowedImproved(p.target, p.query,
                                        core::WindowConfig{}, v.opts, &s);
    }
    const double red = static_cast<double>(base.accesses()) /
                       static_cast<double>(s.accesses());
    std::printf("%-36s %14llu %14llu %9.1fx\n", v.name,
                static_cast<unsigned long long>(s.dp_stores),
                static_cast<unsigned long long>(s.dp_loads), red);
    final_reduction = red;
  }
  std::printf("\n%-44s %10s %10s\n", "memory access reduction", "measured",
              "paper");
  std::printf("%-44s %9.1fx %9.1fx\n", "all improvements vs baseline",
              final_reduction, 12.0);
  return 0;
}
