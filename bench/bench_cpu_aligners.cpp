// E1 — CPU aligner comparison (the paper's first results group).
//
// Paper: "Our CPU implementation achieves a 15.2x, 1.7x, and 1.9x speedup
// over KSW2, Edlib, and a CPU implementation of GenASM without our
// improvements, respectively."
//
// This harness aligns the same candidate pairs with all four CPU
// aligners and prints measured throughput plus the three speedup rows in
// the paper's order. Absolute throughput depends on the host; the rows
// to compare are the ratios.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/ksw/ksw_affine.hpp"
#include "genasmx/myers/myers.hpp"

namespace {

struct Row {
  const char* name;
  double seconds;
  std::uint64_t total_cost;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E1: CPU aligner throughput (bench_cpu_aligners)",
                     "improved GenASM CPU vs KSW2 15.2x, vs Edlib 1.7x, "
                     "vs unimproved GenASM 1.9x");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  std::vector<Row> rows;

  {  // KSW2-class: banded affine DP (minimap2's base aligner).
    ksw::KswConfig kcfg;
    kcfg.band = 751;  // minimap2's long-read bandwidth regime
    ksw::KswAligner aligner(kcfg);
    std::uint64_t cost = 0;
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        cost += static_cast<std::uint64_t>(
            aligner.align(p.target, p.query).edit_distance);
      }
    });
    rows.push_back({"KSW2-class (banded affine)", s, cost});
  }
  {  // Edlib-class: Myers bit-parallel + band doubling.
    myers::MyersAligner aligner;
    std::uint64_t cost = 0;
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        cost += static_cast<std::uint64_t>(
            aligner.align(p.target, p.query).edit_distance);
      }
    });
    rows.push_back({"Edlib-class (Myers bitvector)", s, cost});
  }
  {  // GenASM baseline (unimproved).
    std::uint64_t cost = 0;
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        cost += static_cast<std::uint64_t>(
            core::alignWindowedBaseline(p.target, p.query).edit_distance);
      }
    });
    rows.push_back({"GenASM baseline (MICRO'20)", s, cost});
  }
  {  // GenASM improved (this paper).
    std::uint64_t cost = 0;
    const double s = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        cost += static_cast<std::uint64_t>(
            core::alignWindowedImproved(p.target, p.query).edit_distance);
      }
    });
    rows.push_back({"GenASM improved (this paper)", s, cost});
  }

  std::printf("%-32s %12s %14s %12s\n", "aligner", "seconds",
              "alignments/s", "total cost");
  for (const auto& r : rows) {
    std::printf("%-32s %12.3f %14.1f %12llu\n", r.name, r.seconds,
                static_cast<double>(w.pairs.size()) / r.seconds,
                static_cast<unsigned long long>(r.total_cost));
  }

  const double improved = rows[3].seconds;
  std::printf("\n%-44s %10s %10s\n", "speedup of improved GenASM (CPU) over",
              "measured", "paper");
  std::printf("%-44s %9.1fx %9.1fx\n", "KSW2-class", rows[0].seconds / improved,
              15.2);
  std::printf("%-44s %9.1fx %9.1fx\n", "Edlib-class",
              rows[1].seconds / improved, 1.7);
  std::printf("%-44s %9.1fx %9.1fx\n", "GenASM baseline",
              rows[2].seconds / improved, 1.9);
  std::printf(
      "\nNote: single-thread measurements; alignment pairs are independent, "
      "so the paper's 48-thread ratios are preserved under thread scaling.\n");
  std::printf(
      "Note: the KSW2-class kernel is scalar (no SIMD striping); see "
      "EXPERIMENTS.md for the constant-factor discussion.\n");
  return 0;
}
