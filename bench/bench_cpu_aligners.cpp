// E1 — CPU aligner comparison (the paper's first results group).
//
// Paper: "Our CPU implementation achieves a 15.2x, 1.7x, and 1.9x speedup
// over KSW2, Edlib, and a CPU implementation of GenASM without our
// improvements, respectively."
//
// This harness aligns the same candidate pairs with all four CPU
// aligners — selected by name through the engine::AlignerRegistry, like
// every other consumer — and prints measured throughput plus the three
// speedup rows in the paper's order. Absolute throughput depends on the
// host; the rows to compare are the ratios.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"

namespace {

struct Row {
  const char* label;
  const char* backend;
  double seconds = 0;
  std::uint64_t total_cost = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  if (!cfg.json_path.empty() && !cfg.quick) {
    // Same rule as bench_pipeline: the tracked JSON is only meaningful
    // on the fixed quick workload.
    std::fprintf(stderr,
                 "error: --json requires --quick (the tracked workload)\n");
    return 2;
  }
  if (cfg.quick) {
    // Fixed deterministic tracked workload (see tools/run_bench.sh);
    // sized so the scalar KSW2-class row still finishes in seconds.
    cfg.genome_len = 200'000;
    cfg.read_count = 20;
    cfg.read_length = 1'500;
    cfg.error_rate = 0.10;
    cfg.seed = 1234;
  }
  bench::printHeader("E1: CPU aligner throughput (bench_cpu_aligners)",
                     "improved GenASM CPU vs KSW2 15.2x, vs Edlib 1.7x, "
                     "vs unimproved GenASM 1.9x");
  const auto w = bench::buildWorkload(cfg);
  bench::printWorkload(cfg, w);

  engine::AlignerConfig acfg;
  acfg.ksw.band = 751;  // minimap2's long-read bandwidth regime

  std::vector<Row> rows = {
      {"KSW2-class (banded affine)", "ksw"},
      {"Edlib-class (Myers bitvector)", "myers"},
      {"GenASM baseline (MICRO'20)", "windowed-baseline"},
      {"GenASM improved (this paper)", "windowed-improved"},
  };
  for (auto& r : rows) {
    const auto aligner = engine::makeAligner(r.backend, acfg);
    r.seconds = bench::timeIt([&] {
      for (const auto& p : w.pairs) {
        r.total_cost += static_cast<std::uint64_t>(
            aligner->align(p.target, p.query).edit_distance);
      }
    });
  }

  std::printf("%-32s %12s %14s %12s\n", "aligner", "seconds",
              "alignments/s", "total cost");
  for (const auto& r : rows) {
    std::printf("%-32s %12.3f %14.1f %12llu\n", r.label, r.seconds,
                static_cast<double>(w.pairs.size()) / r.seconds,
                static_cast<unsigned long long>(r.total_cost));
  }

  const double improved = rows[3].seconds;
  std::printf("\n%-44s %10s %10s\n", "speedup of improved GenASM (CPU) over",
              "measured", "paper");
  std::printf("%-44s %9.1fx %9.1fx\n", "KSW2-class", rows[0].seconds / improved,
              15.2);
  std::printf("%-44s %9.1fx %9.1fx\n", "Edlib-class",
              rows[1].seconds / improved, 1.7);
  std::printf("%-44s %9.1fx %9.1fx\n", "GenASM baseline",
              rows[2].seconds / improved, 1.9);
  std::printf(
      "\nNote: single-thread measurements; alignment pairs are independent, "
      "so the paper's 48-thread ratios are preserved under thread scaling.\n");
  std::printf(
      "Note: the KSW2-class kernel is scalar (no SIMD striping); see "
      "EXPERIMENTS.md for the constant-factor discussion.\n");

  if (!cfg.json_path.empty()) {
    bench::JsonObject root;
    root.str("bench", "cpu_aligners")
        .str("mode", "quick")
        .num("pairs", static_cast<std::uint64_t>(w.pairs.size()))
        .num("aligned_bases", w.aligned_bases);
    for (const auto& r : rows) {
      bench::JsonObject o;
      o.num("seconds", r.seconds)
          .num("alignments_per_sec",
               r.seconds > 0
                   ? static_cast<double>(w.pairs.size()) / r.seconds
                   : 0.0)
          .num("total_cost", r.total_cost);
      root.obj(r.backend, o);
    }
    root.num("speedup_vs_ksw", rows[0].seconds / improved)
        .num("speedup_vs_myers", rows[1].seconds / improved)
        .num("speedup_vs_baseline", rows[2].seconds / improved)
        .num("peak_rss_bytes", bench::peakRssBytes());
    if (!root.writeFile(cfg.json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}
