// E6 — End-to-end pipeline (the paper's methodology, Section II) plus
// the tracked perf trajectory.
//
// Paper: "We simulate 500 PacBio reads from the human genome using
// PBSIM2, each of length 10kb. We map these reads to the human genome
// using minimap2 and obtain all chains (candidate locations) it
// generates using the -P flag, 138,929 locations in total."
//
// Default mode reproduces each stage with the in-repo substrates and
// reports per-stage timing plus candidate statistics (--scale=paper for
// the full size). --quick runs the fixed deterministic tracked workload
// instead and, with --json=FILE, records the numbers every future PR is
// held against (see tools/run_bench.sh and README "Performance"):
//   * windowed-improved solver throughput (windows/sec, alignments/sec)
//     with MemStats DP traffic and steady-state scratch allocations
//     (must be 0 per window once the arenas are warm),
//   * MappingPipeline reads/sec for the secondary-emitting full flow,
//     the primary-only single-phase flow, and the primary-only two-phase
//     distance-first flow, plus the two-phase speedup,
//   * peak RSS.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "genasmx/core/windowed.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/mapper/index.hpp"
#include "genasmx/mapper/index_io.hpp"
#include "genasmx/pipeline/pipeline.hpp"
#include "genasmx/refmodel/reference.hpp"
#include "genasmx/simd/batch_solver.hpp"
#include "genasmx/util/stats.hpp"
#include "genasmx/util/thread_pool.hpp"
#include "genasmx/util/timer.hpp"

namespace {

using namespace gx;

std::vector<io::FastxRecord> toFastx(
    const std::vector<readsim::SimulatedRead>& reads) {
  std::vector<io::FastxRecord> out;
  out.reserve(reads.size());
  for (const auto& r : reads) {
    io::FastxRecord rec;
    rec.name = r.name;
    rec.seq = r.seq;
    rec.qual.assign(r.seq.size(), 'I');
    out.push_back(std::move(rec));
  }
  return out;
}

struct FlowTiming {
  double seconds = 0;
  double reads_per_sec = 0;
  std::size_t records = 0;
  pipeline::StageTimes stages{};        ///< breakdown of the timed pass
  pipeline::PrefilterStats prefilter{}; ///< prefilter work of the timed pass
  std::uint64_t prefilter_steady_grow_events = 0;  ///< must be 0 once warm
};

FlowTiming timeFlow(const std::string& genome,
                    const std::vector<io::FastxRecord>& reads,
                    bool emit_secondary, bool two_phase,
                    bool batched_distance = true,
                    pipeline::PrefilterMode prefilter =
                        pipeline::PrefilterMode::kOff) {
  pipeline::PipelineConfig pcfg;
  pcfg.engine.backend = "windowed-improved";
  pcfg.engine.threads = 1;  // single-thread: stable, host-comparable
  pcfg.emit_secondary = emit_secondary;
  pcfg.two_phase = two_phase;
  pcfg.batched_distance = batched_distance;
  pcfg.prefilter.mode = prefilter;
  pipeline::MappingPipeline pipe(
      refmodel::Reference("bench_ref", std::string(genome)), pcfg);
  // Warm pass (index/file-cache/arena first-touch), then the timed pass.
  (void)pipe.mapBatch(reads);
  const pipeline::StageTimes warm_stages = pipe.stageTimes();
  const pipeline::PrefilterStats warm_pf = pipe.prefilterStats();
  util::Timer t;
  const auto records = pipe.mapBatch(reads);
  FlowTiming ft;
  ft.seconds = t.seconds();
  ft.reads_per_sec =
      ft.seconds > 0 ? static_cast<double>(reads.size()) / ft.seconds : 0;
  ft.records = records.size();
  ft.stages = pipe.stageTimes() - warm_stages;
  ft.stages.index_build_s = warm_stages.index_build_s;  // charged once
  const pipeline::PrefilterStats& pf = pipe.prefilterStats();
  ft.prefilter.reads_sketched = pf.reads_sketched - warm_pf.reads_sketched;
  ft.prefilter.windows_sketched =
      pf.windows_sketched - warm_pf.windows_sketched;
  ft.prefilter.candidates_seen = pf.candidates_seen - warm_pf.candidates_seen;
  ft.prefilter.candidates_filtered =
      pf.candidates_filtered - warm_pf.candidates_filtered;
  ft.prefilter.sequence_scans = pf.sequence_scans - warm_pf.sequence_scans;
  ft.prefilter.scratch_grow_events = pf.scratch_grow_events;
  // Sketch scratch growth during the timed (steady-state) pass: the
  // prefilter twin of steady_scratch_allocs_per_window.
  ft.prefilter_steady_grow_events =
      pf.scratch_grow_events - warm_pf.scratch_grow_events;
  return ft;
}

int runTracked(bench::WorkloadConfig cfg) {
  // The tracked workload is fixed: deterministic seeds, repeat-rich
  // genome (so reads carry secondary candidates, as the paper's human-
  // genome workload does), sized to finish in seconds on one core.
  cfg.genome_len = 300'000;
  cfg.read_count = 100;
  cfg.read_length = 2'500;
  cfg.error_rate = 0.10;
  cfg.seed = 1234;
  const auto w = bench::buildWorkload(cfg);
  const auto reads = toFastx(w.reads);

  bench::printHeader("E6: tracked perf (bench_pipeline --quick)",
                     "perf trajectory baseline; see BENCH_pipeline.json");
  bench::printWorkload(cfg, w);

  // --- solver-level metrics over the workload's candidate pairs.
  core::WindowConfig wcfg;
  const int nw = bitvector::wordsNeeded(wcfg.window);
  if (nw != 1) {
    std::fprintf(stderr, "unexpected window width\n");
    return 1;
  }
  core::ImprovedWindowSolver<1> solver;
  core::WindowBuffers bufs;
  // Pass 1: warm the arenas. Pass 2: timed, uncounted. Pass 3: counted
  // (steady state — scratch_allocs must be 0).
  for (const auto& p : w.pairs) {
    (void)core::alignWindowed(solver, p.target, p.query, wcfg, bufs);
  }
  util::Timer t_align;
  std::uint64_t total_cost = 0;
  for (const auto& p : w.pairs) {
    total_cost += core::alignWindowed(solver, p.target, p.query, wcfg, bufs)
                      .cigar.editDistance();
  }
  const double align_seconds = t_align.seconds();
  util::MemStats steady;
  for (const auto& p : w.pairs) {
    (void)core::alignWindowed(solver, p.target, p.query, wcfg, bufs,
                              util::CountingMemCounter(steady));
  }
  const double windows = static_cast<double>(steady.problems);
  const double windows_per_sec =
      align_seconds > 0 ? windows / align_seconds : 0;
  const double aligns_per_sec =
      align_seconds > 0 ? static_cast<double>(w.pairs.size()) / align_seconds
                        : 0;

  std::printf("solver: %zu pairs, %.0f windows in %.3fs "
              "(%.1f windows/s, %.1f alignments/s), cost=%llu\n",
              w.pairs.size(), windows, align_seconds, windows_per_sec,
              aligns_per_sec, static_cast<unsigned long long>(total_cost));
  std::printf("solver steady-state scratch allocations: %llu "
              "(per window: %.4f — must be 0)\n",
              static_cast<unsigned long long>(steady.scratch_allocs),
              windows > 0 ? static_cast<double>(steady.scratch_allocs) /
                                windows
                          : 0);

  // --- distance kernel: scalar solveDistance vs the lane-parallel
  // SimdBatchSolver over the same W=64 window problems (sliced from the
  // workload's candidate pairs along the chain diagonal). This is the
  // tracked batched-kernel stat: both paths must agree bit for bit, and
  // the speedup is the PR-5 acceptance number.
  const simd::IsaLevel isa = simd::activeIsa();
  std::vector<simd::WindowProblem> dwin;
  for (const auto& p : w.pairs) {
    const std::size_t tw = static_cast<std::size_t>(wcfg.textWindow());
    for (std::size_t off = 0;
         off + tw <= p.target.size() && off + 64 <= p.query.size();
         off += 64) {
      simd::WindowProblem wp;
      wp.text = std::string_view(p.target).substr(off, tw);
      wp.pattern = std::string_view(p.query).substr(off, 64);
      dwin.push_back(wp);
    }
  }
  // StartOnly with the always-solvable cap: the windowed drivers'
  // mid-window distance shape.
  genasm::WindowSpec dspec;
  std::vector<int> d_scalar(dwin.size(), -2);
  std::vector<int> d_batched(dwin.size(), -2);
  // Kernel-vs-kernel comparison: the scalar side runs over pre-reversed
  // inputs so the timed loop is solveDistance alone — the batch solver's
  // direct reversed indexing is part of its kernel, the scalar path's
  // reversal copies are not part of this stat.
  std::vector<std::string> d_rev;
  d_rev.reserve(2 * dwin.size());
  for (const auto& wp : dwin) {
    d_rev.push_back(common::reversed(wp.text));
    d_rev.push_back(common::reversed(wp.pattern));
  }
  for (std::size_t i = 0; i < dwin.size(); ++i) {
    d_scalar[i] = solver.solveDistance(d_rev[2 * i], d_rev[2 * i + 1], dspec);
  }
  util::Timer t_dscalar;
  for (std::size_t i = 0; i < dwin.size(); ++i) {
    d_scalar[i] = solver.solveDistance(d_rev[2 * i], d_rev[2 * i + 1], dspec);
  }
  const double dscalar_seconds = t_dscalar.seconds();
  simd::SimdBatchSolver batch_solver(isa);
  batch_solver.solveDistanceBatch(genasm::Anchor::StartOnly, dwin.data(),
                                  dwin.size(), d_batched.data());
  util::Timer t_dbatch;
  batch_solver.solveDistanceBatch(genasm::Anchor::StartOnly, dwin.data(),
                                  dwin.size(), d_batched.data());
  const double dbatch_seconds = t_dbatch.seconds();
  if (d_scalar != d_batched) {
    std::fprintf(stderr, "batched distance kernel diverged from scalar\n");
    return 1;
  }
  const double dscalar_wps =
      dscalar_seconds > 0 ? static_cast<double>(dwin.size()) / dscalar_seconds
                          : 0;
  const double dbatch_wps =
      dbatch_seconds > 0 ? static_cast<double>(dwin.size()) / dbatch_seconds
                         : 0;
  const double dspeedup = dscalar_wps > 0 ? dbatch_wps / dscalar_wps : 0;
  std::printf("distance kernel (W=64, %zu windows, isa=%s, %d lanes): "
              "scalar %.0f windows/s, batched %.0f windows/s (%.2fx)\n",
              dwin.size(), std::string(simd::isaName(isa)).c_str(),
              batch_solver.lanes(), dscalar_wps, dbatch_wps, dspeedup);

  // --- alignment kernel: scalar solve (fill + traceback) vs the
  // lane-parallel alignBatch over the same W=64 window problems. The
  // per-level persisted rows make the batched fill heavier than the
  // distance kernel's two-row ping-pong, so this is tracked separately;
  // both paths must agree cigar for cigar.
  std::vector<genasm::WindowResult> a_scalar(dwin.size());
  std::vector<genasm::WindowResult> a_batched(dwin.size());
  for (std::size_t i = 0; i < dwin.size(); ++i) {
    a_scalar[i] = solver.solve(d_rev[2 * i], d_rev[2 * i + 1], dspec);
  }
  util::Timer t_ascalar;
  for (std::size_t i = 0; i < dwin.size(); ++i) {
    a_scalar[i] = solver.solve(d_rev[2 * i], d_rev[2 * i + 1], dspec);
  }
  const double ascalar_seconds = t_ascalar.seconds();
  simd::SimdBatchSolver align_solver(isa);
  align_solver.alignBatch(genasm::Anchor::StartOnly, dwin.data(), dwin.size(),
                          a_batched.data());
  align_solver.resetStats();
  util::Timer t_abatch;
  align_solver.alignBatch(genasm::Anchor::StartOnly, dwin.data(), dwin.size(),
                          a_batched.data());
  const double abatch_seconds = t_abatch.seconds();
  const simd::BatchStats a_stats = align_solver.stats();
  for (std::size_t i = 0; i < dwin.size(); ++i) {
    if (a_scalar[i].ok != a_batched[i].ok ||
        a_scalar[i].distance != a_batched[i].distance ||
        !(a_scalar[i].cigar == a_batched[i].cigar)) {
      std::fprintf(stderr, "batched align kernel diverged from scalar\n");
      return 1;
    }
  }
  // Padding the shape sort saves: one pass with sorting off gives the
  // pre-sort packed-word volume on the identical batch.
  simd::SimdBatchSolver align_unsorted(isa);
  align_unsorted.setShapeSort(false);
  align_unsorted.alignBatch(genasm::Anchor::StartOnly, dwin.data(),
                            dwin.size(), a_batched.data());
  const simd::BatchStats u_stats = align_unsorted.stats();
  const double ascalar_wps =
      ascalar_seconds > 0 ? static_cast<double>(dwin.size()) / ascalar_seconds
                          : 0;
  const double abatch_wps =
      abatch_seconds > 0 ? static_cast<double>(dwin.size()) / abatch_seconds
                         : 0;
  const double aspeedup = ascalar_wps > 0 ? abatch_wps / ascalar_wps : 0;
  const double occupancy =
      a_stats.lane_slots > 0 ? static_cast<double>(a_stats.lanes_filled) /
                                   static_cast<double>(a_stats.lane_slots)
                             : 0;
  const double pack_sorted =
      a_stats.packed_words > 0 ? static_cast<double>(a_stats.useful_words) /
                                     static_cast<double>(a_stats.packed_words)
                               : 0;
  const double pack_unsorted =
      u_stats.packed_words > 0 ? static_cast<double>(u_stats.useful_words) /
                                     static_cast<double>(u_stats.packed_words)
                               : 0;
  std::printf("align kernel (W=64, %zu windows, isa=%s, %d lanes): "
              "scalar %.0f windows/s, batched %.0f windows/s (%.2fx)\n",
              dwin.size(), std::string(simd::isaName(isa)).c_str(),
              align_solver.lanes(), ascalar_wps, abatch_wps, aspeedup);
  std::printf("  lane occupancy %.4f (%llu/%llu), packing efficiency "
              "%.4f sorted vs %.4f unsorted\n",
              occupancy,
              static_cast<unsigned long long>(a_stats.lanes_filled),
              static_cast<unsigned long long>(a_stats.lane_slots),
              pack_sorted, pack_unsorted);

  // --- batched windowed march: steady-state allocation check over the
  // workload's full pairs (the path pipeline phase 2 runs). Once the
  // lane arenas and march scratch are warm, re-running the identical
  // request set must grow nothing — the batched twin of the scalar
  // steady_scratch_allocs figure above.
  std::vector<core::BatchedAlignRequest> march_reqs;
  march_reqs.reserve(w.pairs.size());
  for (const auto& p : w.pairs) march_reqs.push_back({p.target, p.query});
  std::vector<common::AlignmentResult> march_res(march_reqs.size());
  core::WindowedBatchScratch march_scratch;
  core::alignWindowedBatch(align_solver, wcfg, march_reqs.data(),
                           march_reqs.size(), march_res.data(),
                           march_scratch);
  const std::uint64_t march_solver_warm = align_solver.scratchAllocs();
  const std::uint64_t march_scratch_warm = march_scratch.allocs();
  core::alignWindowedBatch(align_solver, wcfg, march_reqs.data(),
                           march_reqs.size(), march_res.data(),
                           march_scratch);
  const std::uint64_t march_steady_allocs =
      (align_solver.scratchAllocs() - march_solver_warm) +
      (march_scratch.allocs() - march_scratch_warm);
  std::printf("  batched march steady-state scratch allocations: %llu "
              "(per window: %.4f — must be 0)\n",
              static_cast<unsigned long long>(march_steady_allocs),
              windows > 0
                  ? static_cast<double>(march_steady_allocs) / windows
                  : 0);

  // --- index build: serial vs per-contig-parallel over a contig table
  // (the tracked genome sliced into 8 contigs, the multi-contig shape
  // real references have).
  refmodel::Reference bench_ref;
  constexpr std::size_t kContigs = 8;
  const std::size_t slice = w.genome.size() / kContigs;
  for (std::size_t c = 0; c < kContigs; ++c) {
    const std::size_t begin = c * slice;
    const std::size_t len =
        c + 1 == kContigs ? w.genome.size() - begin : slice;
    std::string name = "bench_ctg_";
    name += std::to_string(c);
    bench_ref.addContig(std::move(name),
                        std::string_view(w.genome).substr(begin, len));
  }
  mapper::MinimizerIndex serial_index, parallel_index;
  util::Timer t_serial;
  serial_index.build(bench_ref, 15, 10, 64, nullptr);
  const double index_serial_seconds = t_serial.seconds();
  util::ThreadPool index_pool;  // hardware concurrency
  util::Timer t_parallel;
  parallel_index.build(bench_ref, 15, 10, 64, &index_pool);
  const double index_parallel_seconds = t_parallel.seconds();
  if (!(serial_index == parallel_index)) {
    std::fprintf(stderr, "parallel index build diverged from serial\n");
    return 1;
  }
  const double index_speedup =
      index_parallel_seconds > 0 ? index_serial_seconds / index_parallel_seconds
                                 : 0;
  std::printf("index build (%zu contigs, %zu minimizers): serial %.3fs, "
              "parallel %.3fs on %zu threads (%.2fx)\n",
              kContigs, serial_index.size(), index_serial_seconds,
              index_parallel_seconds, index_pool.size(), index_speedup);

  // --- index build, single-contig shape: the whole tracked genome as
  // one contig, split into overlapping extraction blocks so even a
  // single chromosome fans out (bit-identical to the monolithic build).
  refmodel::Reference single_ref;
  single_ref.addContig("bench_chr", w.genome);
  constexpr std::size_t kBenchBlockBp = 1u << 16;
  mapper::MinimizerIndex sc_mono, sc_serial, sc_parallel;
  sc_mono.build(single_ref, 15, 10, 64, nullptr, /*block_bp=*/0);
  util::Timer t_sc_serial;
  sc_serial.build(single_ref, 15, 10, 64, nullptr, kBenchBlockBp);
  const double sc_serial_seconds = t_sc_serial.seconds();
  util::Timer t_sc_parallel;
  sc_parallel.build(single_ref, 15, 10, 64, &index_pool, kBenchBlockBp);
  const double sc_parallel_seconds = t_sc_parallel.seconds();
  if (!(sc_mono == sc_serial) || !(sc_serial == sc_parallel)) {
    std::fprintf(stderr, "block-split index build diverged\n");
    return 1;
  }
  const double sc_speedup =
      sc_parallel_seconds > 0 ? sc_serial_seconds / sc_parallel_seconds : 0;
  const std::size_t sc_blocks =
      (w.genome.size() + kBenchBlockBp - 1) / kBenchBlockBp;
  std::printf("index build (1 contig, %zu blocks): serial %.3fs, parallel "
              "%.3fs on %zu threads (%.2fx)\n",
              sc_blocks, sc_serial_seconds, sc_parallel_seconds,
              index_pool.size(), sc_speedup);

  // --- index serve-from-disk: write the 8-contig tracked index as a
  // genasmx_index file, reopen it through MappedIndex, and compare the
  // mmap cold start against rebuilding from scratch — the tracked
  // number behind `genasmx_map --index=`. The loaded arrays must match
  // the in-memory index verbatim (the byte-identical-PAF substrate).
  const std::string index_path = "bench_pipeline.tmp.gxi";
  util::Timer t_iwrite;
  mapper::writeIndexFile(index_path, serial_index, bench_ref);
  const double index_write_seconds = t_iwrite.seconds();
  util::Timer t_iload;
  const mapper::MappedIndex mapped(index_path);
  const double index_load_seconds = t_iload.seconds();
  const std::size_t index_file_bytes = mapped.fileBytes();
  const mapper::IndexView& mv = mapped.view();
  bool same = mv.size() == serial_index.size() &&
              mv.k() == serial_index.k() && mv.w() == serial_index.w() &&
              mapped.reference().size() == bench_ref.size();
  for (std::size_t i = 0; same && i < mv.size(); ++i) {
    same = mv.keysData()[i] == serial_index.keys()[i] &&
           mv.valuesData()[i] == serial_index.values()[i];
  }
  std::remove(index_path.c_str());  // the mapping outlives the unlink
  if (!same) {
    std::fprintf(stderr, "mmap'd index diverged from the in-memory build\n");
    return 1;
  }
  const double index_load_speedup =
      index_load_seconds > 0 ? index_serial_seconds / index_load_seconds : 0;
  std::printf("index on disk (%zu bytes): write %.3fs, verified mmap load "
              "%.4fs vs %.3fs rebuild (%.0fx)\n",
              index_file_bytes, index_write_seconds, index_load_seconds,
              index_serial_seconds, index_load_speedup);

  // --- pipeline flows.
  const FlowTiming full = timeFlow(w.genome, reads, true, false);
  const FlowTiming single = timeFlow(w.genome, reads, false, false);
  const FlowTiming two = timeFlow(w.genome, reads, false, true);
  const FlowTiming two_scalar_p1 =
      timeFlow(w.genome, reads, false, true, /*batched_distance=*/false);
  const FlowTiming two_prefilter =
      timeFlow(w.genome, reads, false, true, /*batched_distance=*/true,
               pipeline::PrefilterMode::kSketch);
  const double speedup =
      two.seconds > 0 ? full.seconds / two.seconds : 0;
  const double p1_speedup = two.stages.phase1_distance_s > 0
                                ? two_scalar_p1.stages.phase1_distance_s /
                                      two.stages.phase1_distance_s
                                : 0;
  const double pf_filtered_fraction =
      two_prefilter.prefilter.candidates_seen > 0
          ? static_cast<double>(two_prefilter.prefilter.candidates_filtered) /
                static_cast<double>(two_prefilter.prefilter.candidates_seen)
          : 0;
  const double pf_p1_speedup =
      two_prefilter.stages.phase1_distance_s > 0
          ? two.stages.phase1_distance_s /
                two_prefilter.stages.phase1_distance_s
          : 0;

  std::printf("\npipeline (1 thread, windowed-improved):\n");
  std::printf("  full flow (secondaries)        %8.3fs %10.1f reads/s  %zu records\n",
              full.seconds, full.reads_per_sec, full.records);
  std::printf("  primary-only, single-phase     %8.3fs %10.1f reads/s  %zu records\n",
              single.seconds, single.reads_per_sec, single.records);
  std::printf("  primary-only, two-phase        %8.3fs %10.1f reads/s  %zu records\n",
              two.seconds, two.reads_per_sec, two.records);
  std::printf("  two-phase, scalar phase 1      %8.3fs %10.1f reads/s  %zu records\n",
              two_scalar_p1.seconds, two_scalar_p1.reads_per_sec,
              two_scalar_p1.records);
  std::printf("  two-phase + sketch prefilter   %8.3fs %10.1f reads/s  %zu records\n",
              two_prefilter.seconds, two_prefilter.reads_per_sec,
              two_prefilter.records);
  std::printf("  two-phase speedup vs full      %8.2fx\n", speedup);
  std::printf("  batched phase-1 speedup        %8.2fx (%.3fs -> %.3fs)\n",
              p1_speedup, two_scalar_p1.stages.phase1_distance_s,
              two.stages.phase1_distance_s);
  std::printf("  prefilter: %llu/%llu non-best candidates dropped (%.1f%%), "
              "sketch %.3fs, phase-1 %.3fs -> %.3fs (%.2fx), steady grow "
              "events %llu (must be 0)\n",
              static_cast<unsigned long long>(
                  two_prefilter.prefilter.candidates_filtered),
              static_cast<unsigned long long>(
                  two_prefilter.prefilter.candidates_seen),
              100.0 * pf_filtered_fraction, two_prefilter.stages.sketch_s,
              two.stages.phase1_distance_s,
              two_prefilter.stages.phase1_distance_s, pf_p1_speedup,
              static_cast<unsigned long long>(
                  two_prefilter.prefilter_steady_grow_events));
  std::printf("  two-phase stage breakdown: seed+chain %.3fs, "
              "phase1-distance %.3fs, phase2-traceback %.3fs, output %.3fs\n",
              two.stages.seed_chain_s, two.stages.phase1_distance_s,
              two.stages.traceback_s, two.stages.output_s);
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(bench::peakRssBytes()) / (1024.0 * 1024.0));

  if (!cfg.json_path.empty()) {
    bench::JsonObject workload;
    workload.num("genome_bp", static_cast<std::uint64_t>(cfg.genome_len))
        .num("reads", static_cast<std::uint64_t>(cfg.read_count))
        .num("read_length_bp", static_cast<std::uint64_t>(cfg.read_length))
        .num("error_rate", cfg.error_rate)
        .num("seed", cfg.seed)
        .num("candidates", static_cast<std::uint64_t>(w.total_candidates))
        .num("pairs", static_cast<std::uint64_t>(w.pairs.size()));
    bench::JsonObject aligner;
    aligner.num("windows", static_cast<std::uint64_t>(steady.problems))
        .num("seconds", align_seconds)
        .num("windows_per_sec", windows_per_sec)
        .num("alignments_per_sec", aligns_per_sec)
        .num("total_cost", total_cost)
        .num("dp_loads", steady.dp_loads)
        .num("dp_stores", steady.dp_stores)
        .num("bytes_peak", steady.bytes_peak)
        .num("steady_scratch_allocs", steady.scratch_allocs)
        .num("steady_scratch_allocs_per_window",
             windows > 0
                 ? static_cast<double>(steady.scratch_allocs) / windows
                 : 0.0);
    auto flow = [](const FlowTiming& ft) {
      bench::JsonObject o;
      o.num("seconds", ft.seconds)
          .num("reads_per_sec", ft.reads_per_sec)
          .num("records", static_cast<std::uint64_t>(ft.records));
      return o;
    };
    bench::JsonObject index_build;
    index_build.num("contigs", static_cast<std::uint64_t>(kContigs))
        .num("minimizers", static_cast<std::uint64_t>(serial_index.size()))
        .num("serial_seconds", index_serial_seconds)
        .num("parallel_seconds", index_parallel_seconds)
        .num("pool_threads", static_cast<std::uint64_t>(index_pool.size()))
        .num("speedup_parallel_vs_serial", index_speedup);
    bench::JsonObject index_build_single_contig;
    index_build_single_contig
        .num("blocks", static_cast<std::uint64_t>(sc_blocks))
        .num("block_bp", static_cast<std::uint64_t>(kBenchBlockBp))
        .num("serial_seconds", sc_serial_seconds)
        .num("parallel_seconds", sc_parallel_seconds)
        .num("pool_threads", static_cast<std::uint64_t>(index_pool.size()))
        .num("speedup_parallel_vs_serial", sc_speedup);
    bench::JsonObject index_load;
    index_load
        .num("file_bytes", static_cast<std::uint64_t>(index_file_bytes))
        .num("write_seconds", index_write_seconds)
        .num("load_seconds", index_load_seconds)
        .num("build_seconds", index_serial_seconds)
        .num("speedup_load_vs_build", index_load_speedup);
    bench::JsonObject distance_kernel;
    distance_kernel.num("windows", static_cast<std::uint64_t>(dwin.size()))
        .num("window_bp", 64)
        .str("isa", std::string(simd::isaName(isa)))
        .num("lanes", batch_solver.lanes())
        .num("scalar_seconds", dscalar_seconds)
        .num("batched_seconds", dbatch_seconds)
        .num("distance_scalar_windows_per_sec", dscalar_wps)
        .num("distance_batched_windows_per_sec", dbatch_wps)
        .num("speedup_batched_vs_scalar", dspeedup);
    bench::JsonObject align_kernel;
    align_kernel.num("windows", static_cast<std::uint64_t>(dwin.size()))
        .num("window_bp", 64)
        .str("isa", std::string(simd::isaName(isa)))
        .num("lanes", align_solver.lanes())
        .num("scalar_seconds", ascalar_seconds)
        .num("batched_seconds", abatch_seconds)
        .num("align_scalar_windows_per_sec", ascalar_wps)
        .num("align_batched_windows_per_sec", abatch_wps)
        .num("speedup_batched_vs_scalar", aspeedup)
        .num("lanes_total", a_stats.lane_slots)
        .num("lanes_filled", a_stats.lanes_filled)
        .num("lane_occupancy", occupancy)
        .num("packing_efficiency_sorted", pack_sorted)
        .num("packing_efficiency_unsorted", pack_unsorted)
        .num("march_steady_scratch_allocs", march_steady_allocs)
        .num("march_steady_scratch_allocs_per_window",
             windows > 0
                 ? static_cast<double>(march_steady_allocs) / windows
                 : 0.0);
    bench::JsonObject stage_breakdown;
    stage_breakdown.num("index_build_seconds", two.stages.index_build_s)
        .num("seed_chain_seconds", two.stages.seed_chain_s)
        .num("phase1_distance_seconds", two.stages.phase1_distance_s)
        .num("phase2_traceback_seconds", two.stages.traceback_s)
        .num("output_seconds", two.stages.output_s);
    bench::JsonObject candidate_prefilter;
    candidate_prefilter
        .num("candidates_seen", two_prefilter.prefilter.candidates_seen)
        .num("candidates_filtered",
             two_prefilter.prefilter.candidates_filtered)
        .num("filtered_fraction", pf_filtered_fraction)
        .num("reads_sketched", two_prefilter.prefilter.reads_sketched)
        .num("windows_sketched", two_prefilter.prefilter.windows_sketched)
        .num("sketch_seconds", two_prefilter.stages.sketch_s)
        .num("phase1_seconds_off", two.stages.phase1_distance_s)
        .num("phase1_seconds_on", two_prefilter.stages.phase1_distance_s)
        .num("speedup_phase1_on_vs_off", pf_p1_speedup)
        .num("reads_per_sec_off", two.reads_per_sec)
        .num("reads_per_sec_on", two_prefilter.reads_per_sec)
        .num("reads_per_sec_delta",
             two_prefilter.reads_per_sec - two.reads_per_sec)
        .num("steady_grow_events",
             two_prefilter.prefilter_steady_grow_events);
    bench::JsonObject root;
    root.str("bench", "pipeline")
        .str("mode", "quick")
        .str("backend", "windowed-improved")
        .num("threads", 1)
        .str("simd_isa", std::string(simd::isaName(isa)))
        .obj("workload", workload)
        .obj("aligner", aligner)
        .obj("distance_kernel", distance_kernel)
        .obj("align_kernel", align_kernel)
        .obj("index_build", index_build)
        .obj("index_build_single_contig", index_build_single_contig)
        .obj("index_load", index_load)
        .obj("pipeline_full", flow(full))
        .obj("pipeline_primary_single_phase", flow(single))
        .obj("pipeline_primary_two_phase", flow(two))
        .obj("pipeline_primary_two_phase_scalar_p1", flow(two_scalar_p1))
        .obj("pipeline_primary_two_phase_prefilter", flow(two_prefilter))
        .obj("stage_breakdown", stage_breakdown)
        .obj("candidate_prefilter", candidate_prefilter)
        .num("speedup_two_phase_vs_full", speedup)
        .num("speedup_batched_phase1_vs_scalar", p1_speedup)
        .num("peak_rss_bytes", bench::peakRssBytes());
    if (!root.writeFile(cfg.json_path)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   cfg.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cfg.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  if (cfg.quick) return runTracked(cfg);
  if (!cfg.json_path.empty()) {
    // The tracked JSON is only meaningful on the fixed quick workload;
    // refusing beats silently recording numbers for a different scale.
    std::fprintf(stderr,
                 "error: --json requires --quick (the tracked workload)\n");
    return 2;
  }

  bench::printHeader("E6: end-to-end pipeline (bench_pipeline)",
                     "500 x 10kb PBSIM2 reads -> minimap2 -P chains "
                     "(138,929 candidates) -> alignment");

  util::Timer timer;
  readsim::GenomeConfig gcfg;
  gcfg.length = cfg.genome_len;
  gcfg.seed = cfg.seed;
  const auto genome = readsim::generateGenome(gcfg);
  const double t_genome = timer.seconds();

  timer.reset();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(cfg.read_count, cfg.read_length);
  rcfg.seed = cfg.seed + 1;
  const auto reads = readsim::simulateReads(genome, rcfg);
  const double t_reads = timer.seconds();

  timer.reset();
  mapper::Mapper mapper{std::string(genome)};
  const double t_index = timer.seconds();

  timer.reset();
  std::size_t total_candidates = 0;
  util::Summary cands_per_read;
  std::vector<mapper::AlignmentPair> pairs;
  for (const auto& r : reads) {
    const auto cands = mapper.map(r.seq);
    total_candidates += cands.size();
    cands_per_read.add(static_cast<double>(cands.size()));
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq,
                                          cfg.max_candidates_per_read);
    for (auto& p : rp) pairs.push_back(std::move(p));
  }
  const double t_map = timer.seconds();

  timer.reset();
  std::uint64_t total_cost = 0;
  util::Summary cost_per_pair;
  const auto aligner = engine::makeAligner("windowed-improved");
  for (const auto& p : pairs) {
    const auto res = aligner->align(p.target, p.query);
    total_cost += static_cast<std::uint64_t>(res.edit_distance);
    cost_per_pair.add(res.edit_distance);
  }
  const double t_align = timer.seconds();

  std::printf("stage timings:\n");
  std::printf("  genome generation (%zu bp)     %8.2fs\n", genome.size(),
              t_genome);
  std::printf("  read simulation  (%zu reads)    %8.2fs\n", reads.size(),
              t_reads);
  std::printf("  index build      (k=15, w=10)  %8.2fs\n", t_index);
  std::printf("  mapping/chaining (-P, all)     %8.2fs\n", t_map);
  std::printf("  alignment (improved GenASM)    %8.2fs\n", t_align);
  std::printf("\ncandidates: total=%zu  per-read %s\n", total_candidates,
              cands_per_read.str().c_str());
  std::printf("aligned pairs: %zu (capped at %zu per read)\n", pairs.size(),
              cfg.max_candidates_per_read);
  std::printf("alignment cost per pair: %s\n", cost_per_pair.str().c_str());
  std::printf("alignment throughput: %.1f pairs/s (single thread)\n",
              static_cast<double>(pairs.size()) / t_align);
  std::printf(
      "\nPaper reference point: 500 reads x 10 kb -> 138,929 candidates "
      "(~278/read with -P on the human genome).\nSynthetic genomes are far "
      "less repetitive than the human genome, so per-read candidate counts "
      "are lower here; raise GenomeConfig::repeat_fraction to push the "
      "multiplicity up.\n");
  return 0;
}
