// E6 — End-to-end pipeline (the paper's methodology, Section II).
//
// Paper: "We simulate 500 PacBio reads from the human genome using
// PBSIM2, each of length 10kb. We map these reads to the human genome
// using minimap2 and obtain all chains (candidate locations) it
// generates using the -P flag, 138,929 locations in total."
//
// This harness reproduces each stage with the in-repo substrates and
// reports per-stage timing plus the candidate statistics. Default scale
// is reduced; --scale=paper selects 500 x 10 kb.

#include <cstdio>

#include "bench_common.hpp"
#include "genasmx/engine/registry.hpp"
#include "genasmx/io/paf.hpp"
#include "genasmx/util/stats.hpp"
#include "genasmx/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gx;
  auto cfg = bench::WorkloadConfig::fromArgs(argc, argv);
  bench::printHeader("E6: end-to-end pipeline (bench_pipeline)",
                     "500 x 10kb PBSIM2 reads -> minimap2 -P chains "
                     "(138,929 candidates) -> alignment");

  util::Timer timer;
  readsim::GenomeConfig gcfg;
  gcfg.length = cfg.genome_len;
  gcfg.seed = cfg.seed;
  const auto genome = readsim::generateGenome(gcfg);
  const double t_genome = timer.seconds();

  timer.reset();
  auto rcfg = readsim::ReadSimConfig::pacbioClr(cfg.read_count, cfg.read_length);
  rcfg.seed = cfg.seed + 1;
  const auto reads = readsim::simulateReads(genome, rcfg);
  const double t_reads = timer.seconds();

  timer.reset();
  mapper::Mapper mapper{std::string(genome)};
  const double t_index = timer.seconds();

  timer.reset();
  std::size_t total_candidates = 0;
  util::Summary cands_per_read;
  std::vector<mapper::AlignmentPair> pairs;
  for (const auto& r : reads) {
    const auto cands = mapper.map(r.seq);
    total_candidates += cands.size();
    cands_per_read.add(static_cast<double>(cands.size()));
    auto rp = mapper::buildAlignmentPairs(mapper, r.seq,
                                          cfg.max_candidates_per_read);
    for (auto& p : rp) pairs.push_back(std::move(p));
  }
  const double t_map = timer.seconds();

  timer.reset();
  std::uint64_t total_cost = 0;
  util::Summary cost_per_pair;
  const auto aligner = engine::makeAligner("windowed-improved");
  for (const auto& p : pairs) {
    const auto res = aligner->align(p.target, p.query);
    total_cost += static_cast<std::uint64_t>(res.edit_distance);
    cost_per_pair.add(res.edit_distance);
  }
  const double t_align = timer.seconds();

  std::printf("stage timings:\n");
  std::printf("  genome generation (%zu bp)     %8.2fs\n", genome.size(),
              t_genome);
  std::printf("  read simulation  (%zu reads)    %8.2fs\n", reads.size(),
              t_reads);
  std::printf("  index build      (k=15, w=10)  %8.2fs\n", t_index);
  std::printf("  mapping/chaining (-P, all)     %8.2fs\n", t_map);
  std::printf("  alignment (improved GenASM)    %8.2fs\n", t_align);
  std::printf("\ncandidates: total=%zu  per-read %s\n", total_candidates,
              cands_per_read.str().c_str());
  std::printf("aligned pairs: %zu (capped at %zu per read)\n", pairs.size(),
              cfg.max_candidates_per_read);
  std::printf("alignment cost per pair: %s\n", cost_per_pair.str().c_str());
  std::printf("alignment throughput: %.1f pairs/s (single thread)\n",
              static_cast<double>(pairs.size()) / t_align);
  std::printf(
      "\nPaper reference point: 500 reads x 10 kb -> 138,929 candidates "
      "(~278/read with -P on the human genome).\nSynthetic genomes are far "
      "less repetitive than the human genome, so per-read candidate counts "
      "are lower here; raise GenomeConfig::repeat_fraction to push the "
      "multiplicity up.\n");
  return 0;
}
